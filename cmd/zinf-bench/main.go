// Command zinf-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	zinf-bench            # list experiments
//	zinf-bench -run all   # run everything
//	zinf-bench -run fig5a # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/comm"
	"repro/internal/harness"
	"repro/internal/tensor"
	"repro/internal/zero"
)

func main() {
	run := flag.String("run", "", "experiment id to run, or 'all'")
	jsonOut := flag.String("json", "",
		"write the run's machine-readable records (BENCH_*.json style) to this path ('-' = stdout)")
	backend := flag.String("backend", "reference",
		"compute backend for functional experiments: "+strings.Join(tensor.BackendNames(), "|"))
	prefetch := flag.Int("prefetch", 2,
		"overlap read-ahead depth for the overlap/equiv experiments (0 = off)")
	overlap := flag.Bool("overlap", true,
		"include the async-collective overlap engines in the functional experiments")
	tiling := flag.Int("tiling", 4,
		"memory-centric tiling factor for the fig6b-engine experiment (must divide the experiment model's hidden and vocab sizes; values below 2 fall back to 4 — the experiment always contrasts dense vs tiled)")
	topology := flag.String("topology", "",
		"multi-node fabric for the functional experiments: <nodes>x<ranksPerNode>[:intra=GB/s][:inter=GB/s][:lintra=µs][:linter=µs][:flat] (\"\" = flat; fig6c defaults to 4x2:intra=100:inter=10)")
	partition := flag.String("partition", "slice",
		"parameter partitioning for the stepalloc/overlap experiments: slice|broadcast (fig6c always contrasts both)")
	flag.Parse()

	be, err := tensor.ByName(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	topo, err := comm.ParseTopology(*topology)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	part, err := zero.ParsePartitioning(*partition)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	harness.SetBackend(be)
	harness.SetOverlap(*prefetch, *overlap)
	harness.SetTiling(*tiling)
	harness.SetFabric(topo, part)

	if *run == "" {
		fmt.Println("Available experiments (use -run <id> or -run all):")
		for _, e := range harness.All() {
			fmt.Printf("  %-18s %s\n", e.ID, e.Title)
		}
		return
	}
	var failed bool
	for _, e := range harness.All() {
		if *run != "all" && e.ID != *run {
			continue
		}
		if err := harness.Run(os.Stdout, e); err != nil {
			fmt.Fprintf(os.Stderr, "%s: FAILED: %v\n", e.ID, err)
			failed = true
		}
		fmt.Println()
	}
	if *run != "all" {
		if _, ok := harness.ByID(*run); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
			os.Exit(2)
		}
	}
	if *jsonOut != "" {
		var w *os.File
		if *jsonOut == "-" {
			w = os.Stdout
		} else {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := harness.WriteRecords(w, *backend); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if failed {
		os.Exit(1)
	}
}
