// Command zinf-memcalc evaluates the paper's Sec. 3 memory model (Eqs. 1-5)
// for a given Transformer geometry and reports which DGX-2 tier each state
// fits in — a practical "will it fit?" calculator.
//
// Example:
//
//	zinf-memcalc -hidden 25600 -layers 128 -batch 32 -nodes 1
package main

import (
	"flag"
	"fmt"

	"repro/internal/mem"
	"repro/internal/perf"
)

func main() {
	var (
		hidden = flag.Int64("hidden", 8192, "hidden dimension")
		layers = flag.Int64("layers", 125, "transformer layers")
		heads  = flag.Int64("heads", 16, "attention heads")
		seq    = flag.Int64("seq", 1024, "sequence length")
		batch  = flag.Int64("batch", 32, "total batch size per node")
		ci     = flag.Int64("ci", 1, "blocks between activation checkpoints")
		nodes  = flag.Int("nodes", 1, "DGX-2 nodes")
	)
	flag.Parse()

	m := perf.ModelShape{Hidden: *hidden, Layers: *layers, Heads: *heads, Seq: *seq, CkptEvery: *ci}
	c := perf.DGX2(*nodes)

	fmt.Printf("model: hidden=%d layers=%d  →  %.1fB parameters (Eq. 1)\n",
		m.Hidden, m.Layers, float64(m.Params())/1e9)
	fmt.Printf("\nmemory requirements (batch %d, seq %d, ci %d):\n", *batch, *seq, *ci)
	fmt.Printf("  model states (Eq. 2):          %s\n", mem.FormatBytes(m.ModelStatesBytes()))
	fmt.Printf("  activations w/o checkpointing: %s\n", mem.FormatBytes(m.FullActivationBytes(*batch)))
	fmt.Printf("  activation checkpoints (Eq.3): %s\n", mem.FormatBytes(m.ActivationCheckpointBytes(*batch)))
	fmt.Printf("  MSWM, largest operator (Eq.4): %s\n", mem.FormatBytes(m.MSWMBytes()))
	fmt.Printf("  AWM between checkpoints (Eq.5):%s\n", mem.FormatBytes(m.AWMBytes(*batch)))

	fmt.Printf("\ncluster (%d × DGX-2): GPU %s | CPU %s | NVMe %s\n",
		*nodes, mem.FormatBytes(c.AggGPUMemory()), mem.FormatBytes(c.AggCPUMemory()),
		mem.FormatBytes(c.AggNVMeMemory()))

	fmt.Println("\nfeasibility by strategy (batch 1/GPU):")
	for _, k := range []perf.StrategyKind{
		perf.KindDP, perf.KindZeRO2, perf.KindZeROOffload, perf.Kind3D,
		perf.KindZeRO3, perf.KindInfCPU, perf.KindInfNVMe,
	} {
		ok, b := perf.Feasible(k, c, m, 1)
		verdict := "OOM"
		if ok {
			verdict = "fits"
		}
		fmt.Printf("  %-15s %-5s (gpu/GPU %s, cpu/node %s, nvme/node %s)\n",
			k, verdict, mem.FormatBytes(b.GPUPerGPU), mem.FormatBytes(b.CPUPerNode),
			mem.FormatBytes(b.NVMePeNode))
	}
}
