// Command zinf-roofline measures the distance between the tensor kernels
// and the machine: achieved GFLOP/s (MatMul, Adam) and GB/s (fp16
// encode/decode, memcpy) against peaks estimated by calibration loops run
// in the same process. Each kernel is measured three ways — the retained
// pre-vectorization scalar loop, the 8-wide lane kernel single-threaded,
// and the parallel backend — so the speedup from vectorization and from
// parallelism are separately visible, and every future kernel change has to
// move a real throughput number, not just pass the equivalence tests.
//
// The peaks are honest for pure Go: the FLOP calibration runs eight
// independent scalar multiply-add chains (the most instruction-level
// parallelism a non-SIMD instruction stream extracts), and the copy
// calibration streams a working set far larger than the last-level cache.
//
//	zinf-roofline                      # table to stdout
//	zinf-roofline -json BENCH_roofline.json
//
// The JSON document has the zinf-bench record shape, so zinf-benchdiff
// gates it in CI against bench/baselines/BENCH_roofline.json (direction-
// aware: GFLOP/s, GB/s and the "x" speedup ratios must not drop).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/optim"
	"repro/internal/tensor"
)

var (
	minSecs float64
	reps    int

	// sink defeats dead-code elimination in the calibration loops.
	sink float32
)

// timeOne runs fn for at least minSecs, auto-scaling *iters, and returns
// seconds per call.
func timeOne(fn func(), iters *int) float64 {
	for {
		t0 := time.Now()
		for i := 0; i < *iters; i++ {
			fn()
		}
		secs := time.Since(t0).Seconds()
		if secs >= minSecs {
			return secs / float64(*iters)
		}
		mult := 2.0
		if secs > 0 {
			mult = minSecs/secs*1.2 + 1
		}
		*iters = int(float64(*iters)*mult) + 1
	}
}

// bench returns the best (minimum) seconds per call of fn over reps
// repetitions.
func bench(fn func()) float64 {
	fn() // warm caches, pools and arenas
	iters := 1
	best := 0.0
	for rep := 0; rep < reps; rep++ {
		per := timeOne(fn, &iters)
		if best == 0 || per < best {
			best = per
		}
	}
	return best
}

// benchSet times the functions interleaved rep by rep (f0, f1, ..., f0,
// f1, ...) and returns each one's best seconds per call. On shared machines
// the clock drifts over seconds (frequency scaling, steal time); the
// round-robin makes every drift regime hit every stage, so the ratios
// between stages — the speedup records the CI gate watches — stay stable
// even when the absolute numbers wobble.
func benchSet(fns ...func()) []float64 {
	iters := make([]int, len(fns))
	best := make([]float64, len(fns))
	for i, fn := range fns {
		fn() // warm caches, pools and arenas
		iters[i] = 1
	}
	for rep := 0; rep < reps; rep++ {
		for i, fn := range fns {
			per := timeOne(fn, &iters[i])
			if best[i] == 0 || per < best[i] {
				best[i] = per
			}
		}
	}
	return best
}

// calibrateFlops estimates single-core peak FLOP/s with eight independent
// float32 multiply-add chains — every iteration retires 16 floating-point
// operations with no memory traffic.
func calibrateFlops() float64 {
	const iters = 1 << 18
	const flopsPerIter = 16
	a0, a1, a2, a3 := float32(1.0), float32(1.1), float32(1.2), float32(1.3)
	a4, a5, a6, a7 := float32(1.4), float32(1.5), float32(1.6), float32(1.7)
	const c, d = float32(0.9999999), float32(1e-7)
	secs := bench(func() {
		for i := 0; i < iters; i++ {
			a0 = a0*c + d
			a1 = a1*c + d
			a2 = a2*c + d
			a3 = a3*c + d
			a4 = a4*c + d
			a5 = a5*c + d
			a6 = a6*c + d
			a7 = a7*c + d
		}
	})
	sink += a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7
	return flopsPerIter * iters / secs
}

// calibrateCopy estimates streaming memory bandwidth (bytes read + bytes
// written per second) with a 64 MiB copy — far past the last-level cache —
// single-threaded and fanned out over the backend's worker pool.
func calibrateCopy(be tensor.Backend) (single, par float64) {
	n := 1 << 24
	src := make([]float32, n)
	dst := make([]float32, n)
	for i := range src {
		src[i] = float32(i)
	}
	bytes := float64(2 * 4 * n)
	single = bytes / bench(func() { copy(dst, src) })
	par = bytes / bench(func() {
		be.ParRange(n, 1<<16, func(lo, hi int) { copy(dst[lo:hi], src[lo:hi]) })
	})
	sink += dst[1]
	return single, par
}

// adamFlopsPerElem is the nominal operation count of one Adam element
// update (momentum, variance, bias corrections, sqrt, divides, parameter
// step) used to convert element rates into GFLOP/s.
const adamFlopsPerElem = 14

type stage struct {
	name    string  // "scalar", "vec", "parallel"
	rate    float64 // GFLOP/s or GB/s
	threads int     // 1 for scalar/vec, pool width for parallel
}

type kernel struct {
	name   string // record stem, e.g. "matmul"
	label  string // table label, e.g. "matmul 256x256x256"
	unit   string // "GFLOP/s" or "GB/s"
	stages []stage
}

func main() {
	jsonOut := flag.String("json", "", "write machine-readable records (BENCH_roofline.json style) to this path ('-' = stdout)")
	backendName := flag.String("backend", "parallel", "tensor backend measured as the 'parallel' stage (reference|parallel)")
	size := flag.Int("size", 256, "square MatMul dimension")
	codecN := flag.Int("codec-n", 1<<22, "fp16 codec elements")
	adamN := flag.Int("adam-n", 1<<21, "Adam elements")
	flag.Float64Var(&minSecs, "min-secs", 0.08, "minimum seconds per timed repetition")
	flag.IntVar(&reps, "reps", 3, "timed repetitions (best is kept)")
	flag.Parse()

	be, err := tensor.ByName(*backendName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "zinf-roofline:", err)
		os.Exit(2)
	}
	threads := runtime.GOMAXPROCS(0)

	fmt.Printf("zinf-roofline: backend=%s threads=%d\n", *backendName, threads)
	peakFlops := calibrateFlops()
	peakCopy, peakCopyPar := calibrateCopy(be)
	fmt.Printf("peaks: %.2f GFLOP/s/core (scalar-ILP), %.2f GB/s copy (1 thread), %.2f GB/s copy (pool)\n\n",
		peakFlops/1e9, peakCopy/1e9, peakCopyPar/1e9)

	var kernels []kernel

	// MatMul: C = A·B at m=k=n=size, 2·m·k·n FLOPs per call. Dense inputs —
	// the roofline question is peak kernel throughput, so the sparsity skip
	// must not eat the FLOPs being counted.
	{
		m := *size
		a := denseVec(m*m, 1)
		b := denseVec(m*m, 2)
		c := make([]float32, m*m)
		flops := float64(2 * m * m * m)
		secs := benchSet(
			func() { tensor.MatMulScalar(c, a, b, m, m, m) },
			func() { tensor.MatMul(c, a, b, m, m, m) },
			func() { be.MatMul(c, a, b, m, m, m) },
		)
		kernels = append(kernels, kernel{
			name: "matmul", label: fmt.Sprintf("matmul %d^3", m), unit: "GFLOP/s",
			stages: []stage{
				{"scalar", flops / secs[0], 1},
				{"vec", flops / secs[1], 1},
				{"parallel", flops / secs[2], threads},
			},
		})
	}

	// Adam: one full update per call, nominal flops per element.
	{
		n := *adamN
		cfg := optim.DefaultAdamConfig()
		params, grads := randVec(n, 3), randVec(n, 4)
		m, v := make([]float32, n), make([]float32, n)
		flops := float64(adamFlopsPerElem * n)
		secs := benchSet(
			func() { optim.StepVecScalar(cfg, 1, params, grads, m, v) },
			func() { optim.StepVec(cfg, 1, params, grads, m, v) },
			func() { optim.StepVecOn(be, cfg, 1, params, grads, m, v) },
		)
		kernels = append(kernels, kernel{
			name: "adam", label: fmt.Sprintf("adam %dKi", n>>10), unit: "GFLOP/s",
			stages: []stage{
				{"scalar", flops / secs[0], 1},
				{"vec", flops / secs[1], 1},
				{"parallel", flops / secs[2], threads},
			},
		})
	}

	// fp16 codec: 4 bytes read + 2 written per element encoded (and the
	// reverse decoded), so 6 bytes of traffic per element both ways.
	{
		n := *codecN
		f := randVec(n, 5)
		h := make([]tensor.Half, n)
		g := make([]float32, n)
		tensor.EncodeHalf(h, f)
		bytes := float64(6 * n)
		enc := benchSet(
			func() { tensor.EncodeHalfScalar(h, f) },
			func() { tensor.EncodeHalf(h, f) },
			func() { be.EncodeHalf(h, f) },
		)
		kernels = append(kernels, kernel{
			name: "fp16-encode", label: fmt.Sprintf("fp16-encode %dKi", n>>10), unit: "GB/s",
			stages: []stage{
				{"scalar", bytes / enc[0], 1},
				{"vec", bytes / enc[1], 1},
				{"parallel", bytes / enc[2], threads},
			},
		})
		dec := benchSet(
			func() { tensor.DecodeHalfScalar(g, h) },
			func() { tensor.DecodeHalf(g, h) },
			func() { be.DecodeHalf(g, h) },
		)
		kernels = append(kernels, kernel{
			name: "fp16-decode", label: fmt.Sprintf("fp16-decode %dKi", n>>10), unit: "GB/s",
			stages: []stage{
				{"scalar", bytes / dec[0], 1},
				{"vec", bytes / dec[1], 1},
				{"parallel", bytes / dec[2], threads},
			},
		})
	}

	// Table + records.
	var records []harness.Record
	records = append(records,
		harness.Record{Name: "zinf/roofline/peak/flops-core", Unit: "GFLOP/s", Value: peakFlops / 1e9},
		harness.Record{Name: "zinf/roofline/peak/copy", Unit: "GB/s", Value: peakCopy / 1e9},
		harness.Record{Name: "zinf/roofline/peak/copy-pool", Unit: "GB/s", Value: peakCopyPar / 1e9},
	)
	fmt.Printf("%-22s %5s  %12s %8s %8s\n", "kernel", "stage", "achieved", "%peak", "speedup")
	for _, k := range kernels {
		scalarRate := k.stages[0].rate
		for _, s := range k.stages {
			peak := peakForStage(k.unit, s, peakFlops, peakCopy, peakCopyPar)
			pct := 100 * s.rate / peak
			speedup := s.rate / scalarRate
			fmt.Printf("%-22s %8s  %9.2f %s %7.1f%% %7.2fx\n", k.label, s.name, s.rate/1e9, k.unit, pct, speedup)
			records = append(records, harness.Record{
				Name: "zinf/roofline/" + k.name + "/" + s.name, Unit: k.unit, Value: s.rate / 1e9,
				Extra: map[string]float64{"pct_peak": pct},
			})
		}
		records = append(records,
			harness.Record{Name: "zinf/roofline/" + k.name + "/vec-speedup", Unit: "x", Value: k.stages[1].rate / scalarRate},
			harness.Record{Name: "zinf/roofline/" + k.name + "/speedup", Unit: "x", Value: k.stages[2].rate / scalarRate},
		)
	}

	if *jsonOut != "" {
		doc := struct {
			Bench   string           `json:"bench"`
			Backend string           `json:"backend"`
			Records []harness.Record `json:"records"`
		}{Bench: "zinf-roofline", Backend: *backendName, Records: records}
		w := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "zinf-roofline:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "zinf-roofline:", err)
			os.Exit(1)
		}
	}
	_ = sink
}

// peakForStage picks the calibration ceiling a stage is charged against:
// the per-core FLOP peak (scaled by the pool width for the parallel stage)
// or the copy bandwidth (single-thread vs pool).
func peakForStage(unit string, s stage, peakFlops, peakCopy, peakCopyPar float64) float64 {
	if unit == "GFLOP/s" {
		return peakFlops * float64(s.threads)
	}
	if s.threads > 1 {
		return peakCopyPar
	}
	return peakCopy
}

// randVec returns n pseudo-random float32 values in [-1, 1) with zeros
// sprinkled in (every seventh element), matching the training data the
// codec's zero fast class sees.
func randVec(n int, seed uint64) []float32 {
	v := denseVec(n, seed)
	for i := 0; i < n; i += 7 {
		v[i] = 0
	}
	return v
}

// denseVec returns n pseudo-random float32 values with no planted zeros, so
// the matmul sparsity skip stays cold.
func denseVec(n int, seed uint64) []float32 {
	rng := tensor.NewRNG(seed)
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.Float64()*2-1) + 0.5
	}
	return v
}
