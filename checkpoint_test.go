package zeroinf_test

import (
	"bytes"
	"encoding/binary"
	"strings"
	"sync"
	"testing"

	zeroinf "repro"
)

func TestCheckpointRoundTripBytes(t *testing.T) {
	params := map[string][]float32{
		"b.w": {1, 2, 3},
		"a.w": {-0.5, 0.25},
	}
	var buf bytes.Buffer
	if err := zeroinf.WriteCheckpoint(&buf, params); err != nil {
		t.Fatal(err)
	}
	got, err := zeroinf.ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("params = %d", len(got))
	}
	for name, want := range params {
		for i, v := range want {
			if got[name][i] != v {
				t.Fatalf("%s[%d] = %g, want %g", name, i, got[name][i], v)
			}
		}
	}
	// Deterministic bytes: re-writing gives identical output.
	var buf2 bytes.Buffer
	if err := zeroinf.WriteCheckpoint(&buf2, params); err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := zeroinf.WriteCheckpoint(&buf3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Fatal("checkpoint bytes not reproducible")
	}
}

func TestReadCheckpointRejectsGarbage(t *testing.T) {
	if _, err := zeroinf.ReadCheckpoint(bytes.NewReader([]byte("NOPE----"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := zeroinf.ReadCheckpoint(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

// Train with DDP, checkpoint, load into fresh DDP and fresh ZeRO-Infinity
// engines: weights must match bit for bit, and continued training from the
// checkpoint must be identical across the two engines.
func TestCheckpointTransfersAcrossEngines(t *testing.T) {
	mcfg := tinyModel()
	const ranks, batch = 2, 2

	// Phase 1: pretrain with DDP and save.
	var ckpt bytes.Buffer
	zeroinf.SPMD(ranks, func(c *zeroinf.Comm) {
		g, _ := zeroinf.NewModel(mcfg)
		e, err := zeroinf.NewEngine(zeroinf.EngineConfig{Stage: zeroinf.StageDDP, LossScale: 64, Seed: 3}, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		defer e.Close()
		for s := 0; s < 3; s++ {
			tok, tgt := zeroinf.SyntheticBatch(uint64(10+s*10+c.Rank()), mcfg, batch)
			if _, err := e.Step(tok, tgt, batch); err != nil {
				t.Error(err)
				return
			}
		}
		params := e.FullParams() // collective
		if c.Rank() == 0 {
			if err := zeroinf.WriteCheckpoint(&ckpt, params); err != nil {
				t.Error(err)
			}
		}
	})
	if ckpt.Len() == 0 {
		t.Fatal("no checkpoint written")
	}

	// Phase 2: load into two fresh engines and continue identically.
	resume := func(ecfg zeroinf.EngineConfig) []float64 {
		var losses []float64
		var mu sync.Mutex
		zeroinf.SPMD(ranks, func(c *zeroinf.Comm) {
			g, _ := zeroinf.NewModel(mcfg)
			e, err := zeroinf.NewEngine(ecfg, c, g)
			if err != nil {
				t.Error(err)
				return
			}
			defer e.Close()
			if err := zeroinf.LoadCheckpoint(bytes.NewReader(ckpt.Bytes()), e); err != nil {
				t.Error(err)
				return
			}
			var local []float64
			for s := 0; s < 3; s++ {
				tok, tgt := zeroinf.SyntheticBatch(uint64(500+s*10+c.Rank()), mcfg, batch)
				res, err := e.Step(tok, tgt, batch)
				if err != nil {
					t.Error(err)
					return
				}
				local = append(local, res.Loss)
			}
			if c.Rank() == 0 {
				mu.Lock()
				losses = local
				mu.Unlock()
			}
		})
		return losses
	}
	ddp := resume(zeroinf.EngineConfig{Stage: zeroinf.StageDDP, LossScale: 64, Seed: 999})
	inf := resume(zeroinf.EngineConfig{Infinity: true, Params: zeroinf.OnNVMe,
		Optimizer: zeroinf.OnNVMe, LossScale: 64, Seed: 999})
	if len(ddp) != 3 || len(inf) != 3 {
		t.Fatalf("resume lengths %d %d", len(ddp), len(inf))
	}
	for i := range ddp {
		if ddp[i] != inf[i] {
			t.Fatalf("resumed trajectories diverged at step %d: %.17g vs %.17g", i, ddp[i], inf[i])
		}
	}
}

func TestGradAccumViaFacade(t *testing.T) {
	res, err := zeroinf.Train(zeroinf.TrainOptions{
		Model:          tinyModel(),
		Engine:         zeroinf.EngineConfig{Stage: zeroinf.Stage3, LossScale: 64, Seed: 4, ClipNorm: 1.0},
		Ranks:          2,
		Steps:          2,
		BatchPerRank:   2,
		GradAccumSteps: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Losses) != 2 {
		t.Fatalf("losses = %d", len(res.Losses))
	}
}

// Checkpoint round-trip on a tiled model (ModelConfig.Tiling): each tile is
// an independent named parameter, so WriteCheckpoint/ReadCheckpoint +
// LoadParams must carry a tiled model across every engine family with
// bit-identical resumed trajectories.
func TestCheckpointRoundTripTiledModel(t *testing.T) {
	mcfg := tinyModel()
	mcfg.Tiling = 4
	const ranks, batch = 2, 2

	// Pretrain the tiled model with DDP and save.
	var ckpt bytes.Buffer
	zeroinf.SPMD(ranks, func(c *zeroinf.Comm) {
		g, _ := zeroinf.NewModel(mcfg)
		e, err := zeroinf.NewEngine(zeroinf.EngineConfig{Stage: zeroinf.StageDDP, LossScale: 64, Seed: 3}, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		defer e.Close()
		for s := 0; s < 3; s++ {
			tok, tgt := zeroinf.SyntheticBatch(uint64(10+s*10+c.Rank()), mcfg, batch)
			if _, err := e.Step(tok, tgt, batch); err != nil {
				t.Error(err)
				return
			}
		}
		params := e.FullParams()
		if c.Rank() == 0 {
			if err := zeroinf.WriteCheckpoint(&ckpt, params); err != nil {
				t.Error(err)
			}
		}
	})
	if ckpt.Len() == 0 {
		t.Fatal("no checkpoint written")
	}
	saved, err := zeroinf.ReadCheckpoint(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tileParams := 0
	for name := range saved {
		if strings.Contains(name, ".tile") {
			tileParams++
		}
	}
	if tileParams == 0 {
		t.Fatal("tiled checkpoint contains no tile parameters")
	}

	resume := func(ecfg zeroinf.EngineConfig) []float64 {
		var losses []float64
		var mu sync.Mutex
		zeroinf.SPMD(ranks, func(c *zeroinf.Comm) {
			g, _ := zeroinf.NewModel(mcfg)
			e, err := zeroinf.NewEngine(ecfg, c, g)
			if err != nil {
				t.Error(err)
				return
			}
			defer e.Close()
			if err := zeroinf.LoadCheckpoint(bytes.NewReader(ckpt.Bytes()), e); err != nil {
				t.Error(err)
				return
			}
			var local []float64
			for s := 0; s < 3; s++ {
				tok, tgt := zeroinf.SyntheticBatch(uint64(500+s*10+c.Rank()), mcfg, batch)
				res, err := e.Step(tok, tgt, batch)
				if err != nil {
					t.Error(err)
					return
				}
				local = append(local, res.Loss)
			}
			if c.Rank() == 0 {
				mu.Lock()
				losses = local
				mu.Unlock()
			}
		})
		return losses
	}
	ddp := resume(zeroinf.EngineConfig{Stage: zeroinf.StageDDP, LossScale: 64, Seed: 999})
	z2 := resume(zeroinf.EngineConfig{Stage: zeroinf.Stage2, LossScale: 64, Seed: 999})
	z3 := resume(zeroinf.EngineConfig{Stage: zeroinf.Stage3, LossScale: 64, Seed: 999})
	infc := resume(zeroinf.EngineConfig{Infinity: true, Params: zeroinf.OnCPU,
		Optimizer: zeroinf.OnCPU, LossScale: 64, Seed: 999})
	infn := resume(zeroinf.EngineConfig{Infinity: true, Params: zeroinf.OnNVMe,
		Optimizer: zeroinf.OnNVMe, PrefetchDepth: 2, Overlap: true, LossScale: 64, Seed: 999})
	if len(ddp) != 3 {
		t.Fatalf("resume ran %d steps", len(ddp))
	}
	for name, got := range map[string][]float64{"zero2": z2, "zero3": z3, "infinity-cpu": infc, "infinity-nvme": infn} {
		if len(got) != len(ddp) {
			t.Fatalf("%s resume ran %d steps, want %d", name, len(got), len(ddp))
		}
		for i := range ddp {
			if got[i] != ddp[i] {
				t.Fatalf("tiled resume diverged from ddp at step %d (%s): %.17g vs %.17g",
					i, name, got[i], ddp[i])
			}
		}
	}
}

// ckptBytes hand-assembles a checkpoint stream: magic, version, count, then
// one record per (name, elems) pair with zeroed fp16 payloads.
func ckptBytes(count uint32, records []struct {
	name  string
	elems int
}) []byte {
	var buf bytes.Buffer
	buf.WriteString("ZINF")
	binary.Write(&buf, binary.LittleEndian, uint32(1)) // version
	binary.Write(&buf, binary.LittleEndian, count)
	for _, r := range records {
		binary.Write(&buf, binary.LittleEndian, uint32(len(r.name)))
		buf.WriteString(r.name)
		binary.Write(&buf, binary.LittleEndian, uint64(r.elems))
		buf.Write(make([]byte, 2*r.elems))
	}
	return buf.Bytes()
}

// Duplicate parameter names used to be swallowed silently (last one wins),
// masking corrupt or maliciously spliced checkpoints.
func TestReadCheckpointRejectsDuplicateNames(t *testing.T) {
	recs := []struct {
		name  string
		elems int
	}{{"w", 3}, {"w", 3}}
	if _, err := zeroinf.ReadCheckpoint(bytes.NewReader(ckptBytes(2, recs))); err == nil {
		t.Fatal("duplicate parameter name accepted")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("wrong error: %v", err)
	}
}

// Bytes after the declared parameter count indicate corruption (e.g. a
// truncated count field) and must not be silently ignored.
func TestReadCheckpointRejectsTrailingBytes(t *testing.T) {
	recs := []struct {
		name  string
		elems int
	}{{"w", 3}}
	good := ckptBytes(1, recs)
	if _, err := zeroinf.ReadCheckpoint(bytes.NewReader(good)); err != nil {
		t.Fatalf("clean checkpoint rejected: %v", err)
	}
	if _, err := zeroinf.ReadCheckpoint(bytes.NewReader(append(good, 0xAB))); err == nil {
		t.Fatal("trailing byte accepted")
	} else if !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("wrong error: %v", err)
	}
}

// Checkpoints written by the overlap engines (async collectives + gather
// prefetch) and resumed into them must behave exactly like the synchronous
// engines — save/load is collective-order sensitive, so this guards the
// overlap engines' sequence-number bookkeeping across FullParams/LoadParams.
func TestCheckpointRoundTripOverlapEngines(t *testing.T) {
	mcfg := tinyModel()
	const ranks, batch = 2, 2

	// Pretrain WITH overlap and save.
	var ckpt bytes.Buffer
	zeroinf.SPMD(ranks, func(c *zeroinf.Comm) {
		g, _ := zeroinf.NewModel(mcfg)
		e, err := zeroinf.NewEngine(zeroinf.EngineConfig{Stage: zeroinf.Stage3,
			PrefetchDepth: 2, Overlap: true, LossScale: 64, Seed: 3}, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		defer e.Close()
		for s := 0; s < 3; s++ {
			tok, tgt := zeroinf.SyntheticBatch(uint64(10+s*10+c.Rank()), mcfg, batch)
			if _, err := e.Step(tok, tgt, batch); err != nil {
				t.Error(err)
				return
			}
		}
		params := e.FullParams()
		if c.Rank() == 0 {
			if err := zeroinf.WriteCheckpoint(&ckpt, params); err != nil {
				t.Error(err)
			}
		}
	})
	if ckpt.Len() == 0 {
		t.Fatal("no checkpoint written")
	}

	resume := func(ecfg zeroinf.EngineConfig) []float64 {
		var losses []float64
		var mu sync.Mutex
		zeroinf.SPMD(ranks, func(c *zeroinf.Comm) {
			g, _ := zeroinf.NewModel(mcfg)
			e, err := zeroinf.NewEngine(ecfg, c, g)
			if err != nil {
				t.Error(err)
				return
			}
			defer e.Close()
			if err := zeroinf.LoadCheckpoint(bytes.NewReader(ckpt.Bytes()), e); err != nil {
				t.Error(err)
				return
			}
			var local []float64
			for s := 0; s < 3; s++ {
				tok, tgt := zeroinf.SyntheticBatch(uint64(500+s*10+c.Rank()), mcfg, batch)
				res, err := e.Step(tok, tgt, batch)
				if err != nil {
					t.Error(err)
					return
				}
				local = append(local, res.Loss)
			}
			if c.Rank() == 0 {
				mu.Lock()
				losses = local
				mu.Unlock()
			}
		})
		return losses
	}
	ddp := resume(zeroinf.EngineConfig{Stage: zeroinf.StageDDP, LossScale: 64, Seed: 999})
	z3o := resume(zeroinf.EngineConfig{Stage: zeroinf.Stage3,
		PrefetchDepth: 2, Overlap: true, LossScale: 64, Seed: 999})
	info := resume(zeroinf.EngineConfig{Infinity: true, Params: zeroinf.OnNVMe, Optimizer: zeroinf.OnNVMe,
		PrefetchDepth: 2, Overlap: true, LossScale: 64, Seed: 999})
	for i := range ddp {
		if ddp[i] != z3o[i] || ddp[i] != info[i] {
			t.Fatalf("overlap resume diverged at step %d: ddp %.17g z3 %.17g infinity %.17g",
				i, ddp[i], z3o[i], info[i])
		}
	}
}
