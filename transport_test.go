// Cross-transport trajectory equivalence: the tentpole contract of the
// pluggable-transport redesign. A world of worker "processes" (goroutines
// here, each owning its own socket transport over loopback TCP — the same
// code path zinf-launch exercises with real processes) must train
// bit-identically to the in-memory goroutine world: byte-equal loss
// trajectories and byte-equal final weights, for DDP, ZeRO-3 under both
// partitioning strategies, and ZeRO-Infinity with overlap and prefetch.
package zeroinf_test

import (
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	zeroinf "repro"
)

// rankOutcome is one rank's full observable trajectory.
type rankOutcome struct {
	losses  []float64
	weights map[string][]float32
	err     error
}

// trainRank trains one rank with the library building blocks, mirroring
// zeroinf.Train's batch seeding (accum index 0), and returns everything
// observable: per-step global losses and the gathered final fp16 weights.
func trainRank(c *zeroinf.Comm, mcfg zeroinf.ModelConfig, ecfg zeroinf.EngineConfig, steps, batch int, dataSeed uint64) rankOutcome {
	g, err := zeroinf.NewModel(mcfg)
	if err != nil {
		return rankOutcome{err: err}
	}
	e, err := zeroinf.NewEngine(ecfg, c, g)
	if err != nil {
		return rankOutcome{err: err}
	}
	defer e.Close()
	var out rankOutcome
	for s := 0; s < steps; s++ {
		seed := dataSeed + uint64(s*1000+c.Rank())
		tok, tgt := zeroinf.SyntheticBatch(seed, mcfg, batch)
		sr, err := e.Step(tok, tgt, batch)
		if err != nil {
			return rankOutcome{err: fmt.Errorf("rank %d step %d: %w", c.Rank(), s, err)}
		}
		out.losses = append(out.losses, sr.Loss)
	}
	out.weights = e.FullParams()
	return out
}

// runMem trains a world over the in-memory transport.
func runMem(t *testing.T, ranks int, mcfg zeroinf.ModelConfig, ecfg zeroinf.EngineConfig, steps, batch int) []rankOutcome {
	t.Helper()
	out := make([]rankOutcome, ranks)
	zeroinf.SPMD(ranks, func(c *zeroinf.Comm) {
		out[c.Rank()] = trainRank(c, mcfg, ecfg, steps, batch, 1)
	})
	return out
}

// runSock trains the same world with one socket transport per rank over
// loopback TCP — each rank builds its own sealed World, exactly as a
// zinf-launch worker process does.
func runSock(t *testing.T, ranks int, mcfg zeroinf.ModelConfig, ecfg zeroinf.EngineConfig, steps, batch int) []rankOutcome {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserving port: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	be, err := zeroinf.BackendByName(ecfg.Backend)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]rankOutcome, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			tr, err := zeroinf.NewSockTransport(zeroinf.SockConfig{
				Rank: rank, Size: ranks, Coord: addr, DialTimeout: 20 * time.Second,
			})
			if err != nil {
				out[rank] = rankOutcome{err: err}
				return
			}
			w, err := zeroinf.NewWorld(zeroinf.WorldOptions{
				Size: ranks, Transport: tr, Topology: ecfg.Topology, CodecBackend: be,
			})
			if err != nil {
				tr.Close()
				out[rank] = rankOutcome{err: err}
				return
			}
			defer w.Close()
			out[rank] = trainRank(w.Comm(rank), mcfg, ecfg, steps, batch, 1)
		}(r)
	}
	wg.Wait()
	return out
}

// assertIdentical demands byte-equal losses and final weights across two
// worlds' outcomes, rank by rank.
func assertIdentical(t *testing.T, mem, sock []rankOutcome) {
	t.Helper()
	for r := range mem {
		if mem[r].err != nil {
			t.Fatalf("mem rank %d: %v", r, mem[r].err)
		}
		if sock[r].err != nil {
			t.Fatalf("sock rank %d: %v", r, sock[r].err)
		}
		if len(mem[r].losses) != len(sock[r].losses) {
			t.Fatalf("rank %d: %d vs %d losses", r, len(mem[r].losses), len(sock[r].losses))
		}
		for s := range mem[r].losses {
			if math.Float64bits(mem[r].losses[s]) != math.Float64bits(sock[r].losses[s]) {
				t.Fatalf("rank %d step %d: loss diverged: mem %.17g sock %.17g",
					r, s, mem[r].losses[s], sock[r].losses[s])
			}
		}
		if len(mem[r].weights) != len(sock[r].weights) {
			t.Fatalf("rank %d: weight map sizes differ: %d vs %d", r, len(mem[r].weights), len(sock[r].weights))
		}
		for name, mw := range mem[r].weights {
			sw, ok := sock[r].weights[name]
			if !ok {
				t.Fatalf("rank %d: weight %q missing from sock world", r, name)
			}
			if len(mw) != len(sw) {
				t.Fatalf("rank %d: weight %q length differs", r, name)
			}
			for i := range mw {
				if math.Float32bits(mw[i]) != math.Float32bits(sw[i]) {
					t.Fatalf("rank %d: weight %q[%d] diverged: mem %x sock %x",
						r, name, i, math.Float32bits(mw[i]), math.Float32bits(sw[i]))
				}
			}
		}
	}
}

// TestSockTransportTrainsBitIdentical is the PR's acceptance criterion: a
// 4-rank socket world trains bit-identically to the in-memory world for
// DDP, ZeRO-3 (both partitioning strategies), and ZeRO-Infinity with
// overlap and prefetch.
func TestSockTransportTrainsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-world training in -short mode")
	}
	mcfg := zeroinf.ModelConfig{Vocab: 32, Hidden: 32, Heads: 4, Seq: 8, Layers: 2}
	base := zeroinf.EngineConfig{LossScale: 1024, DynamicLossScale: true, Seed: 7}
	for _, tc := range []struct {
		name string
		mut  func(*zeroinf.EngineConfig)
	}{
		{"ddp", func(c *zeroinf.EngineConfig) { c.Stage = zeroinf.StageDDP }},
		{"z3-slice-overlap", func(c *zeroinf.EngineConfig) {
			c.Stage = zeroinf.Stage3
			c.Overlap = true
			c.PrefetchDepth = 2
		}},
		{"z3-broadcast", func(c *zeroinf.EngineConfig) {
			c.Stage = zeroinf.Stage3
			c.Partition = zeroinf.PartitionBroadcast
		}},
		{"infinity-overlap-prefetch", func(c *zeroinf.EngineConfig) {
			c.Infinity = true
			c.Params = zeroinf.OnCPU
			c.Optimizer = zeroinf.OnCPU
			c.Overlap = true
			c.PrefetchDepth = 2
		}},
		{"z3-hier-topology", func(c *zeroinf.EngineConfig) {
			c.Stage = zeroinf.Stage3
			c.Overlap = true
			c.PrefetchDepth = 2
			c.Topology = &zeroinf.Topology{Nodes: 2, NodeSize: 2}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ecfg := base
			tc.mut(&ecfg)
			mem := runMem(t, 4, mcfg, ecfg, 4, 2)
			sock := runSock(t, 4, mcfg, ecfg, 4, 2)
			assertIdentical(t, mem, sock)
		})
	}
}

// TestTrainWorkerModeMatchesSPMD checks the zeroinf.Train worker-mode entry
// point (TrainOptions.Comm) against the classic SPMD path on a shared
// sealed in-memory world: same losses, every rank reporting.
func TestTrainWorkerModeMatchesSPMD(t *testing.T) {
	mcfg := zeroinf.ModelConfig{Vocab: 32, Hidden: 32, Heads: 4, Seq: 8, Layers: 1}
	ecfg := zeroinf.EngineConfig{Stage: zeroinf.Stage3, LossScale: 1024, DynamicLossScale: true, Seed: 7}
	ref, err := zeroinf.Train(zeroinf.TrainOptions{
		Model: mcfg, Engine: ecfg, Ranks: 2, Steps: 3, BatchPerRank: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := zeroinf.NewWorld(zeroinf.WorldOptions{Size: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	results := make([]zeroinf.TrainResult, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			results[rank], errs[rank] = zeroinf.Train(zeroinf.TrainOptions{
				Model: mcfg, Engine: ecfg, Comm: w.Comm(rank), Steps: 3, BatchPerRank: 2,
			})
		}(r)
	}
	wg.Wait()
	for r := 0; r < 2; r++ {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		if len(results[r].Losses) != len(ref.Losses) {
			t.Fatalf("rank %d: %d losses, SPMD had %d", r, len(results[r].Losses), len(ref.Losses))
		}
		for s := range ref.Losses {
			if math.Float64bits(results[r].Losses[s]) != math.Float64bits(ref.Losses[s]) {
				t.Fatalf("rank %d step %d: worker-mode loss %.17g != SPMD %.17g",
					r, s, results[r].Losses[s], ref.Losses[s])
			}
		}
	}
	// Worker mode refuses checkpointing and world-size disagreement.
	if _, err := zeroinf.Train(zeroinf.TrainOptions{
		Model: mcfg, Engine: zeroinf.EngineConfig{CheckpointDir: t.TempDir(), CheckpointEvery: 1},
		Comm: w.Comm(0), Steps: 1, BatchPerRank: 1,
	}); err == nil {
		t.Error("worker mode accepted checkpointing")
	}
	if _, err := zeroinf.Train(zeroinf.TrainOptions{
		Model: mcfg, Engine: ecfg, Comm: w.Comm(0), Ranks: 3, Steps: 1, BatchPerRank: 1,
	}); err == nil {
		t.Error("worker mode accepted mismatched Ranks")
	}
}
