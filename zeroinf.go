// Package zeroinf is the public API of the ZeRO-Infinity reproduction: a
// data-parallel Transformer training library in pure Go that implements the
// full ZeRO family (DDP, ZeRO-1/2/3, ZeRO-Offload) and ZeRO-Infinity — the
// infinity offload engine with GPU/CPU/NVMe placement, bandwidth-centric
// partitioning, overlap-centric prefetching, CPU activation-checkpoint
// offload, and memory-centric tiling — plus the paper's analytic and
// simulated evaluation harness.
//
// Ranks are goroutines, collectives are channels, NVMe is a real
// asynchronous file-backed I/O engine; every engine trains bit-identically
// to plain data parallelism (see the equiv experiment).
//
// Quick start:
//
//	res, err := zeroinf.Train(zeroinf.TrainOptions{
//		Model:  zeroinf.ModelConfig{Vocab: 64, Hidden: 32, Heads: 4, Seq: 16, Layers: 2},
//		Engine: zeroinf.EngineConfig{Infinity: true, Params: zeroinf.OnCPU, Optimizer: zeroinf.OnCPU},
//		Ranks:  4, Steps: 10, BatchPerRank: 2,
//	})
package zeroinf

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/optim"
	"repro/internal/tensor"
	"repro/internal/zero"
)

// Re-exported configuration types. These alias the internal implementation
// types, so the full method sets are available through this package.
type (
	// ModelConfig describes the GPT-like Transformer to train. Set Tiling
	// to build the large projections (attention qkv/output, MLP fc1/fc2,
	// the tied LM head's token table) as memory-centric tiled operators;
	// engines then gather and release one tile at a time, cutting the max
	// live parameter working set (Stats.MaxLiveParamBytes) by ~the factor.
	ModelConfig = model.Config
	// GPT is the model; construct per rank with NewModel.
	GPT = model.GPT
	// Comm is one rank's communicator handle.
	Comm = comm.Comm
	// Stage selects the ZeRO partitioning stage for non-Infinity engines.
	Stage = zero.Stage
	// Placement selects the tier (GPU/CPU/NVMe) holding a state.
	Placement = zero.Placement
	// StepResult reports one training step.
	StepResult = zero.StepResult
	// AdamConfig holds optimizer hyperparameters.
	AdamConfig = optim.AdamConfig
	// InfinityStats reports ZeRO-Infinity engine activity.
	InfinityStats = core.Stats
	// ComputeBackend is the kernel-dispatch interface; all backends are
	// bit-identical, differing only in speed.
	ComputeBackend = tensor.Backend
	// Topology groups ranks into nodes with distinct intra-/inter-node
	// link bandwidth and latency: collectives decompose hierarchically and
	// the fabric accounts achieved aggregate bandwidth per collective.
	Topology = comm.Topology
	// Partitioning selects the Fig. 6c parameter-partitioning strategy for
	// stage-3/Infinity engines: 1/dp slicing or owner-rank broadcast.
	Partitioning = zero.Partitioning
	// CommTraffic is one collective kind's modeled byte flow and simulated
	// cost (see Topology).
	CommTraffic = comm.TrafficStats
)

// Placement and stage constants.
const (
	OnGPU  = zero.OnGPU
	OnCPU  = zero.OnCPU
	OnNVMe = zero.OnNVMe

	StageDDP = zero.StageDDP
	Stage1   = zero.Stage1
	Stage2   = zero.Stage2
	Stage3   = zero.Stage3

	PartitionSlice     = zero.PartitionSlice
	PartitionBroadcast = zero.PartitionBroadcast
)

// ParseTopology parses a "<nodes>x<ranksPerNode>[:intra=..][:inter=..]
// [:lintra=..][:linter=..][:flat]" spec ("" = flat fabric).
func ParseTopology(spec string) (*Topology, error) { return comm.ParseTopology(spec) }

// ParsePartitioning resolves a partitioning-strategy name
// ("", "slice", "broadcast").
func ParsePartitioning(s string) (Partitioning, error) { return zero.ParsePartitioning(s) }

// DefaultAdamConfig returns the standard large-model Adam recipe.
func DefaultAdamConfig() AdamConfig { return optim.DefaultAdamConfig() }

// Backends lists the available compute-backend names for EngineConfig.Backend.
func Backends() []string { return tensor.BackendNames() }

// BackendByName resolves a compute backend ("reference", "parallel"; "" is
// reference) for callers that want to inspect or share one directly.
func BackendByName(name string) (ComputeBackend, error) { return tensor.ByName(name) }

// NewModel builds a model tree (parameters declared, not initialized —
// engines own initialization and placement).
func NewModel(cfg ModelConfig) (*GPT, error) { return model.NewGPT(cfg) }

// SyntheticBatch produces a deterministic toy next-token-prediction batch.
func SyntheticBatch(seed uint64, cfg ModelConfig, batch int) (tokens, targets []int) {
	return model.SyntheticBatch(newRNG(seed), cfg, batch)
}

// SPMD spawns fn on one goroutine per rank and waits — the standard entry
// point for single-process multi-rank training (the in-memory transport).
func SPMD(ranks int, fn func(c *Comm)) { comm.Run(ranks, fn) }

// Transport re-exports: the rank-to-rank data plane is pluggable. A World
// built over the in-memory transport hosts every rank as a goroutine; one
// built over the socket transport hosts a single rank per process,
// connected over TCP (see NewSockTransport and cmd/zinf-launch). Training
// trajectories are bit-identical across transports.
type (
	// World owns a transport plus the installed codec and topology.
	World = comm.World
	// WorldOptions configures a World at construction; the world is sealed
	// (immutable) once built.
	WorldOptions = comm.WorldOptions
	// Transport is the pluggable rank-to-rank data plane.
	Transport = comm.Transport
	// SockConfig configures one rank's end of a socket-transport world.
	SockConfig = comm.SockConfig
)

// NewWorld builds a sealed world from options. A nil Transport selects the
// in-memory reference transport over opts.Size goroutine ranks.
func NewWorld(opts WorldOptions) (*World, error) { return comm.New(opts) }

// NewSockTransport bootstraps one rank of a TCP-connected world, blocking
// until this rank is wired to the hub (rank 0).
func NewSockTransport(cfg SockConfig) (Transport, error) { return comm.NewSockTransport(cfg) }

// ValidateTopology reports whether t can be installed on a world of size
// ranks — launchers call this to fail fast before spawning workers.
func ValidateTopology(t *Topology, ranks int) error { return comm.ValidateTopology(t, ranks) }

// EngineConfig selects and configures a training engine.
type EngineConfig struct {
	// Infinity selects the ZeRO-Infinity engine; otherwise Stage picks a
	// classic engine (DDP, ZeRO-1, ZeRO-2, ZeRO-3).
	Infinity bool
	Stage    Stage
	// OffloadOptimizer turns Stage2 into ZeRO-Offload.
	OffloadOptimizer bool

	// Infinity placements and features.
	Params             Placement
	Optimizer          Placement
	OffloadActivations bool
	// PrefetchDepth is the overlap-centric read-ahead window: how many
	// upcoming parameters (per the learned gather trace) have their
	// allgathers — and, on NVMe, their shard reads — issued speculatively
	// during the current operator's compute. Used by both the ZeRO-3 and
	// ZeRO-Infinity engines; 0 disables prefetch.
	PrefetchDepth int
	// Overlap launches gradient reduce-scatters asynchronously from the
	// backward hooks (drained before the overflow check) and, together with
	// PrefetchDepth, enables asynchronous parameter allgathers. Results are
	// bit-identical to the synchronous engines; only wall-clock changes.
	Overlap     bool
	NVMeDir     string // file-backed NVMe store directory ("" = in-memory)
	GPUMemory   int64  // optional GPU working-set budget in bytes
	PreFragment int64  // optional Fig. 6b fragmentation chunk

	Adam             AdamConfig
	LossScale        float64
	DynamicLossScale bool
	Seed             uint64
	// ClipNorm, when positive, clips the global gradient L2 norm before
	// each optimizer step.
	ClipNorm float64

	// Backend selects the compute backend by name: "" or "reference" for
	// the serial baseline, "parallel" for the blocked multi-goroutine
	// kernels. Training trajectories are bit-identical across backends.
	Backend string

	// Partition selects the stage-3/Infinity parameter-partitioning
	// strategy (Fig. 6c): PartitionSlice (1/dp, default) or
	// PartitionBroadcast (owner-rank). Trajectories are bit-identical;
	// achieved aggregate bandwidth differs (Stats.CommTraffic).
	Partition Partitioning
	// Topology, when set, groups ranks into nodes: collectives decompose
	// hierarchically and the fabric models intra- vs inter-node link cost.
	// Bit-identical to the flat fabric.
	Topology *Topology

	// CheckpointDir, together with CheckpointEvery, enables crash-consistent
	// asynchronous snapshotting: every CheckpointEvery optimizer steps each
	// rank serializes its training state into an arena-backed staging buffer
	// and hands it to a background writer that commits a generation
	// directory (rank states + consolidated fp16 weights + MANIFEST) while
	// training continues. See internal/ckpt for the format and crash
	// guarantees.
	CheckpointDir   string
	CheckpointEvery int
}

// Engine is the uniform training-engine interface.
type Engine interface {
	// Step runs one iteration on this rank's batch (tokens/targets of
	// length batch×Seq) and returns the global mean loss.
	Step(tokens, targets []int, batch int) (StepResult, error)
	// StepAccum runs one iteration with gradient accumulation over
	// micro-batches: one optimizer step after all micro-batches' gradients
	// have been reduced and accumulated.
	StepAccum(microTokens, microTargets [][]int, batchPerMicro int) (StepResult, error)
	// FullParams gathers the current fp16 weights (collective call).
	FullParams() map[string][]float32
	// Close releases engine resources (no-op for in-memory engines).
	Close()
}

// RankState is the per-rank checkpoint surface every engine implements:
// SaveRankState serializes this rank's complete training state (master
// weights, Adam moments, loss-scaler state, step count) without collectives;
// LoadRankState restores it and rebuilds the fp16 weights, exactly
// reproducing the uninterrupted trajectory. Under ZeRO-1/2 the fp16 rebuild
// in LoadRankState is collective, so all ranks must call it together.
type RankState interface {
	SaveRankState(w io.Writer) error
	LoadRankState(r io.Reader) error
}

// NewEngine constructs the configured engine for one rank.
func NewEngine(cfg EngineConfig, c *Comm, g *GPT) (Engine, error) {
	be, err := tensor.ByName(cfg.Backend)
	if err != nil {
		return nil, err
	}
	if cfg.Infinity {
		e, err := core.NewInfinityEngine(core.Config{
			Params:             cfg.Params,
			Optimizer:          cfg.Optimizer,
			OffloadActivations: cfg.OffloadActivations,
			PrefetchDepth:      cfg.PrefetchDepth,
			Overlap:            cfg.Overlap,
			Adam:               cfg.Adam,
			LossScale:          cfg.LossScale,
			DynamicLossScale:   cfg.DynamicLossScale,
			Seed:               cfg.Seed,
			ClipNorm:           cfg.ClipNorm,
			NVMeDir:            cfg.NVMeDir,
			GPUMemory:          cfg.GPUMemory,
			PreFragment:        cfg.PreFragment,
			Backend:            be,
			Partition:          cfg.Partition,
			Topology:           cfg.Topology,
		}, c, g)
		if err != nil {
			return nil, err
		}
		return infinityEngine{e}, nil
	}
	zc := zero.Config{
		Stage:            cfg.Stage,
		Adam:             cfg.Adam,
		LossScale:        cfg.LossScale,
		DynamicLossScale: cfg.DynamicLossScale,
		Seed:             cfg.Seed,
		OffloadOptimizer: cfg.OffloadOptimizer,
		ClipNorm:         cfg.ClipNorm,
		PrefetchDepth:    cfg.PrefetchDepth,
		Overlap:          cfg.Overlap,
		Backend:          be,
		Partition:        cfg.Partition,
		Topology:         cfg.Topology,
	}
	if cfg.Stage == Stage3 {
		e, err := zero.NewZ3Engine(zc, c, g)
		if err != nil {
			return nil, err
		}
		return z3Engine{e}, nil
	}
	e, err := zero.NewDPEngine(zc, c, g)
	if err != nil {
		return nil, err
	}
	return dpEngine{e}, nil
}

type dpEngine struct{ *zero.DPEngine }

func (e dpEngine) Step(tok, tgt []int, batch int) (StepResult, error) {
	return e.DPEngine.Step(tok, tgt, batch), nil
}

func (e dpEngine) StepAccum(mt, mg [][]int, batch int) (StepResult, error) {
	return e.DPEngine.StepAccum(mt, mg, batch), nil
}
func (e dpEngine) Close() {}

type z3Engine struct{ *zero.Z3Engine }

func (e z3Engine) Step(tok, tgt []int, batch int) (StepResult, error) {
	return e.Z3Engine.Step(tok, tgt, batch), nil
}

func (e z3Engine) StepAccum(mt, mg [][]int, batch int) (StepResult, error) {
	return e.Z3Engine.StepAccum(mt, mg, batch), nil
}
func (e z3Engine) Close() {}

// Stats maps the stage-3 engine's overlap counters into the shared stats
// shape: the comm-stage fields are populated, NVMe fields stay zero.
// MaxLiveParamBytes carries the engine's static bound (the largest single
// gathered parameter); the Infinity engine reports the measured peak.
func (e z3Engine) Stats() InfinityStats {
	return InfinityStats{
		Gathers:            e.Gathers,
		OnDemandGathers:    e.OnDemandGathers,
		CommPrefetchIssued: e.PrefetchIssued,
		CommPrefetchHits:   e.PrefetchHits,
		AsyncReduces:       e.AsyncReduces,
		MaxLiveParamBytes:  e.MaxLiveParamBytes(),
		CommTraffic:        e.CommTraffic(),
		CommGBps:           e.CommTrafficTotal().AggGBps(),
	}
}

type infinityEngine struct{ *core.InfinityEngine }

// Stats exposes ZeRO-Infinity engine statistics. Callers holding an Engine
// can type-assert to interface{ Stats() InfinityStats }.
func (e infinityEngine) Stats() InfinityStats { return e.InfinityEngine.Stats() }

// TrainOptions configures the convenience training loop.
type TrainOptions struct {
	Model        ModelConfig
	Engine       EngineConfig
	Ranks        int
	Steps        int
	BatchPerRank int
	// Comm, when set, runs the training loop for this one rank on the
	// calling goroutine instead of spawning an SPMD world — the worker-mode
	// entry point used by zinf-launch, where every rank is its own process
	// holding one communicator of a socket-transport world. Ranks is
	// inferred from the world size (it may be left zero); batches are seeded
	// by absolute step and rank exactly as in SPMD mode, so an N-process
	// run's trajectory is bit-identical to the in-memory N-goroutine run.
	// The returned Losses/FinalStep/Stats describe this rank. Checkpointing
	// and Resume are not supported in worker mode.
	Comm *Comm
	// GradAccumSteps accumulates gradients over this many micro-batches per
	// optimizer step (default 1).
	GradAccumSteps int
	// DataSeed drives the synthetic batches (default 1).
	DataSeed uint64
	// OnStep, when set, observes rank 0's step results.
	OnStep func(step int, res StepResult)
	// Resume restarts from the newest complete checkpoint generation in
	// Engine.CheckpointDir (cold start if none survives). Batches are seeded
	// by absolute step, so a resumed run replays the uninterrupted
	// trajectory bit-identically.
	Resume bool
	// Stop, when closed, requests a clean early stop: ranks reach consensus
	// on the step boundary, take a final snapshot (if checkpointing is
	// enabled), and return.
	Stop <-chan struct{}

	// ckptWriter, when set (tests), overrides the async checkpoint writer
	// options — fault injection, deterministic kill points, retry budgets.
	// World is forced to Ranks.
	ckptWriter *ckpt.WriterOptions
}

// TrainResult reports a Train run.
type TrainResult struct {
	Losses []float64 // global mean loss per step, from StartStep on
	Stats  InfinityStats
	// StartStep is the first step of this run (non-zero after Resume).
	StartStep int
	// FinalStep is one past the last step executed (== Steps unless stopped
	// early via TrainOptions.Stop).
	FinalStep int
	// CheckpointErr reports an asynchronous snapshot failure. Training
	// itself completed; earlier complete generations remain usable.
	CheckpointErr error
}

// snapshotRank runs one rank's part of a snapshot at step: wait out the
// previously in-flight generation (bounding the pipeline at one snapshot in
// flight), stage and submit this rank's state file, and — via the
// collective FullParams gather every rank joins — rank 0's consolidated
// weights file. Commit errors are sticky in the writer and surfaced through
// Drain; only staging failures are returned here.
func snapshotRank(w *ckpt.Writer, e Engine, c *Comm, step int, pending []*ckpt.Ticket) ([]*ckpt.Ticket, error) {
	for _, t := range pending {
		t.Wait()
	}
	pending = pending[:0]
	rs, ok := e.(RankState)
	if !ok {
		return pending, fmt.Errorf("zeroinf: engine %T does not implement RankState", e)
	}
	st := w.Stage()
	if err := rs.SaveRankState(st); err != nil {
		w.Recycle(st)
		return pending, fmt.Errorf("zeroinf: rank %d snapshot at step %d: %w", c.Rank(), step, err)
	}
	pending = append(pending, w.Submit(uint64(step), step, ckpt.RankFileName(c.Rank()), st))
	full := e.FullParams() // collective: every rank participates
	if c.Rank() == 0 {
		ws := w.Stage()
		if err := WriteCheckpoint(ws, full); err != nil {
			w.Recycle(ws)
			return pending, fmt.Errorf("zeroinf: weights snapshot at step %d: %w", step, err)
		}
		pending = append(pending, w.Submit(uint64(step), step, ckpt.WeightsName, ws))
	}
	return pending, nil
}

// Train spawns an SPMD world, trains the model on deterministic synthetic
// data and returns the loss trajectory — the programmatic equivalent of
// cmd/zinf-train. With Engine.CheckpointDir/CheckpointEvery set it snapshots
// asynchronously as it goes; with Resume it restarts from the newest
// complete generation and — because batches are seeded by absolute step —
// replays the uninterrupted run bit-identically.
func Train(opts TrainOptions) (TrainResult, error) {
	if opts.Comm != nil {
		if opts.Engine.CheckpointDir != "" || opts.Resume {
			return TrainResult{}, fmt.Errorf("zeroinf: checkpointing is not supported in worker mode (TrainOptions.Comm set)")
		}
		if opts.Ranks != 0 && opts.Ranks != opts.Comm.Size() {
			return TrainResult{}, fmt.Errorf("zeroinf: Ranks %d disagrees with the communicator's world size %d", opts.Ranks, opts.Comm.Size())
		}
		opts.Ranks = opts.Comm.Size()
	}
	if opts.Ranks <= 0 || opts.Steps <= 0 || opts.BatchPerRank <= 0 {
		return TrainResult{}, fmt.Errorf("zeroinf: Ranks, Steps, BatchPerRank must be positive")
	}
	if opts.DataSeed == 0 {
		opts.DataSeed = 1
	}
	startStep := 0
	var set *ckpt.Set
	if opts.Resume && opts.Engine.CheckpointDir != "" {
		s, err := ckpt.LatestComplete(opts.Engine.CheckpointDir)
		switch {
		case err == nil:
			if s.Manifest.World != opts.Ranks {
				return TrainResult{}, fmt.Errorf("zeroinf: checkpoint %s holds world size %d, training with %d ranks",
					s.Dir, s.Manifest.World, opts.Ranks)
			}
			set = s
			startStep = s.Manifest.Step
		case errors.Is(err, ckpt.ErrNoCheckpoint):
			// Nothing survived on disk: cold start.
		default:
			return TrainResult{}, err
		}
	}
	var writer *ckpt.Writer
	if opts.Engine.CheckpointDir != "" && opts.Engine.CheckpointEvery > 0 {
		wopts := ckpt.WriterOptions{}
		if opts.ckptWriter != nil {
			wopts = *opts.ckptWriter
		}
		wopts.World = opts.Ranks
		w, err := ckpt.NewWriter(opts.Engine.CheckpointDir, wopts)
		if err != nil {
			return TrainResult{}, err
		}
		writer = w
	}
	var (
		mu       sync.Mutex
		res      TrainResult
		firstErr error
	)
	res.StartStep = startStep
	res.FinalStep = startStep
	body := func(c *Comm) {
		fail := func(err error) {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
		g, err := NewModel(opts.Model)
		if err != nil {
			fail(err)
			return
		}
		e, err := NewEngine(opts.Engine, c, g)
		if err != nil {
			fail(err)
			return
		}
		defer e.Close()
		if set != nil {
			rs, ok := e.(RankState)
			if !ok {
				fail(fmt.Errorf("zeroinf: engine %T does not implement RankState", e))
				return
			}
			rc, err := set.OpenRank(c.Rank())
			if err != nil {
				fail(err)
				return
			}
			err = rs.LoadRankState(rc)
			rc.Close()
			if err != nil {
				fail(fmt.Errorf("zeroinf: rank %d resume from %s: %w", c.Rank(), set.Dir, err))
				return
			}
		}
		accum := opts.GradAccumSteps
		if accum < 1 {
			accum = 1
		}
		var (
			losses  []float64
			pending []*ckpt.Ticket
		)
		step := startStep
		snapped := startStep
		for s := startStep; s < opts.Steps; s++ {
			if opts.Stop != nil {
				// Stop consensus: every rank sees the same verdict at the
				// same step boundary, so all take the same final snapshot.
				stop := 0.0
				select {
				case <-opts.Stop:
					stop = 1
				default:
				}
				if c.AllReduceScalar(stop) != 0 {
					break
				}
			}
			microTok := make([][]int, accum)
			microTgt := make([][]int, accum)
			for m := 0; m < accum; m++ {
				seed := opts.DataSeed + uint64(s*1000+m*100000+c.Rank())
				microTok[m], microTgt[m] = SyntheticBatch(seed, opts.Model, opts.BatchPerRank)
			}
			sr, err := e.StepAccum(microTok, microTgt, opts.BatchPerRank)
			if err != nil {
				fail(fmt.Errorf("rank %d step %d: %w", c.Rank(), s, err))
				return
			}
			losses = append(losses, sr.Loss)
			if c.Rank() == 0 && opts.OnStep != nil {
				opts.OnStep(s, sr)
			}
			step = s + 1
			if writer != nil && step%opts.Engine.CheckpointEvery == 0 {
				if pending, err = snapshotRank(writer, e, c, step, pending); err != nil {
					fail(err)
					return
				}
				snapped = step
			}
		}
		if writer != nil && step > snapped {
			// Final snapshot: clean shutdown (Stop) or a step count that is
			// not a multiple of CheckpointEvery.
			if pending, err = snapshotRank(writer, e, c, step, pending); err != nil {
				fail(err)
				return
			}
		}
		for _, t := range pending {
			t.Wait()
		}
		if c.Rank() == 0 || opts.Comm != nil {
			mu.Lock()
			res.Losses = losses
			res.FinalStep = step
			if se, ok := e.(interface{ Stats() InfinityStats }); ok {
				res.Stats = se.Stats()
			}
			mu.Unlock()
		}
	}
	if opts.Comm != nil {
		body(opts.Comm)
	} else {
		SPMD(opts.Ranks, body)
	}
	if writer != nil {
		res.CheckpointErr = writer.Drain()
		if cerr := writer.Close(); res.CheckpointErr == nil {
			res.CheckpointErr = cerr
		}
	}
	return res, firstErr
}

func newRNG(seed uint64) *rngAlias { return rngNew(seed) }
