package zeroinf_test

import (
	"testing"

	zeroinf "repro"
)

func tinyModel() zeroinf.ModelConfig {
	return zeroinf.ModelConfig{Vocab: 16, Hidden: 16, Heads: 2, Seq: 6, Layers: 2}
}

func TestTrainFacadeAllEngines(t *testing.T) {
	engines := map[string]zeroinf.EngineConfig{
		"ddp":          {Stage: zeroinf.StageDDP, LossScale: 128, Seed: 5},
		"zero2":        {Stage: zeroinf.Stage2, LossScale: 128, Seed: 5},
		"zero3":        {Stage: zeroinf.Stage3, LossScale: 128, Seed: 5},
		"infinity-cpu": {Infinity: true, Params: zeroinf.OnCPU, Optimizer: zeroinf.OnCPU, LossScale: 128, Seed: 5},
		"infinity-nvme": {Infinity: true, Params: zeroinf.OnNVMe, Optimizer: zeroinf.OnNVMe,
			PrefetchDepth: 2, LossScale: 128, Seed: 5},
	}
	var ref []float64
	for _, name := range []string{"ddp", "zero2", "zero3", "infinity-cpu", "infinity-nvme"} {
		steps := 0
		res, err := zeroinf.Train(zeroinf.TrainOptions{
			Model:        tinyModel(),
			Engine:       engines[name],
			Ranks:        4,
			Steps:        3,
			BatchPerRank: 2,
			OnStep:       func(int, zeroinf.StepResult) { steps++ },
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Losses) != 3 || steps != 3 {
			t.Fatalf("%s: losses=%d callbacks=%d", name, len(res.Losses), steps)
		}
		if ref == nil {
			ref = res.Losses
			continue
		}
		for i := range ref {
			if res.Losses[i] != ref[i] {
				t.Fatalf("%s: diverged from ddp at step %d: %g vs %g", name, i, res.Losses[i], ref[i])
			}
		}
	}
}

func TestTrainReportsInfinityStats(t *testing.T) {
	res, err := zeroinf.Train(zeroinf.TrainOptions{
		Model: tinyModel(),
		Engine: zeroinf.EngineConfig{Infinity: true, Params: zeroinf.OnNVMe,
			Optimizer: zeroinf.OnNVMe, PrefetchDepth: 2, LossScale: 64, Seed: 9},
		Ranks: 2, Steps: 2, BatchPerRank: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NVMeBytesRead == 0 || res.Stats.Gathers == 0 {
		t.Fatalf("missing stats: %+v", res.Stats)
	}
}

func TestTrainValidatesOptions(t *testing.T) {
	if _, err := zeroinf.Train(zeroinf.TrainOptions{Model: tinyModel()}); err == nil {
		t.Fatal("zero ranks accepted")
	}
	bad := tinyModel()
	bad.Heads = 3
	if _, err := zeroinf.Train(zeroinf.TrainOptions{Model: bad, Ranks: 1, Steps: 1, BatchPerRank: 1}); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestSPMDAndManualEngine(t *testing.T) {
	mcfg := tinyModel()
	zeroinf.SPMD(2, func(c *zeroinf.Comm) {
		g, err := zeroinf.NewModel(mcfg)
		if err != nil {
			t.Error(err)
			return
		}
		e, err := zeroinf.NewEngine(zeroinf.EngineConfig{Stage: zeroinf.Stage3, LossScale: 32, Seed: 2}, c, g)
		if err != nil {
			t.Error(err)
			return
		}
		defer e.Close()
		tok, tgt := zeroinf.SyntheticBatch(uint64(100+c.Rank()), mcfg, 2)
		if _, err := e.Step(tok, tgt, 2); err != nil {
			t.Error(err)
			return
		}
		params := e.FullParams()
		if len(params) == 0 {
			t.Error("no params gathered")
		}
	})
}
