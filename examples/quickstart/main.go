// Quickstart: train a small GPT with ZeRO-Infinity on 4 goroutine "GPUs",
// with fp16 parameter shards and fp32 optimizer shards offloaded to CPU.
// The whole public API surface needed for training fits in this file.
package main

import (
	"fmt"
	"log"

	zeroinf "repro"
)

func main() {
	res, err := zeroinf.Train(zeroinf.TrainOptions{
		Model: zeroinf.ModelConfig{
			Vocab: 64, Hidden: 32, Heads: 4, Seq: 16, Layers: 2,
		},
		Engine: zeroinf.EngineConfig{
			Infinity:  true,
			Params:    zeroinf.OnCPU,
			Optimizer: zeroinf.OnCPU,
			LossScale: 1024, DynamicLossScale: true,
			Seed: 42,
		},
		Ranks:        4,
		Steps:        25,
		BatchPerRank: 2,
		OnStep: func(s int, r zeroinf.StepResult) {
			if s%5 == 0 || s == 24 {
				fmt.Printf("step %2d  loss %.4f\n", s, r.Loss)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	first, last := res.Losses[0], res.Losses[len(res.Losses)-1]
	fmt.Printf("\nloss %.4f → %.4f on synthetic next-token data", first, last)
	if last < first {
		fmt.Println("  ✓ learning")
	} else {
		fmt.Println("  ✗ no progress?")
	}
}
