// Fine-tuning on a single "DGX-2 node": 16 goroutine GPUs train the largest
// model of the example suite with everything — fp16 parameter shards AND
// fp32 optimizer state — streamed through a real file-backed NVMe store,
// activation checkpoints offloaded to CPU, and the overlap-centric
// prefetcher enabled. This is the paper's Sec. 8.4 democratization scenario
// in miniature: the model never resides in "GPU" working memory whole.
package main

import (
	"fmt"
	"log"
	"os"

	zeroinf "repro"
	"repro/internal/mem"
)

func main() {
	dir, err := os.MkdirTemp("", "zeroinf-finetune-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	mcfg := zeroinf.ModelConfig{
		Vocab: 128, Hidden: 64, Heads: 4, Seq: 32, Layers: 4,
		CheckpointActivations: true,
	}
	fmt.Printf("fine-tuning a %d-parameter GPT on 16 ranks, NVMe store in %s\n",
		mcfg.ExactParamCount(), dir)

	res, err := zeroinf.Train(zeroinf.TrainOptions{
		Model: mcfg,
		Engine: zeroinf.EngineConfig{
			Infinity:           true,
			Params:             zeroinf.OnNVMe,
			Optimizer:          zeroinf.OnNVMe,
			OffloadActivations: true,
			PrefetchDepth:      3,
			NVMeDir:            dir,
			LossScale:          512,
			DynamicLossScale:   true,
			Seed:               7,
		},
		Ranks:        16,
		Steps:        10,
		BatchPerRank: 1,
		OnStep: func(s int, r zeroinf.StepResult) {
			fmt.Printf("step %2d  loss %.4f\n", s, r.Loss)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	s := res.Stats
	fmt.Printf("\n-- infinity offload engine report (rank 0) --\n")
	fmt.Printf("parameter gathers:      %d (%d on-demand external)\n", s.Gathers, s.OnDemandGathers)
	fmt.Printf("prefetch:               %d issued, %d consumed\n", s.PrefetchIssued, s.PrefetchHits)
	fmt.Printf("NVMe traffic:           %s read, %s written\n",
		mem.FormatBytes(s.NVMeBytesRead), mem.FormatBytes(s.NVMeBytesWritten))
	fmt.Printf("pinned staging pool:    %s reused across %d acquires\n",
		mem.FormatBytes(s.PinnedBytes), s.PinnedAcquires)
	fmt.Printf("activation ckpt bytes:  %s offloaded to CPU\n", mem.FormatBytes(s.CkptBytesOffload))
}
