// Trillion-scale what-if: drive the performance stack directly to answer
// "what happens if I train a 1T-20T model on a DGX-2 SuperPOD?" — the
// paper's Figure 5 study. No training happens here; the discrete-event
// simulator and the analytic feasibility model do the work in milliseconds.
package main

import (
	"fmt"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/zero"
)

func main() {
	fmt.Println("ZeRO-Infinity at paper scale (simulated DGX-2 SuperPOD)")
	fmt.Println()

	fmt.Println("Throughput, 512 GPUs (Figure 5a):")
	for _, r := range sim.Fig5a() {
		td := "OOM"
		if r.ThreeD.TFlopsPerGPU > 0 {
			td = fmt.Sprintf("%5.1f TF/GPU", r.ThreeD.TFlopsPerGPU)
		}
		fmt.Printf("  %-5s  ZeRO-Infinity %5.1f TF/GPU   3D parallelism %s\n",
			r.Label, r.ZeROInfinity.TFlopsPerGPU, td)
	}

	fmt.Println("\nWeak scaling of the 1T model (Figure 5b):")
	for _, p := range sim.Fig5b() {
		marker := ""
		if p.TotalPetaflops > p.LinearPetaflops*1.01 {
			marker = "  ← superlinear"
		}
		fmt.Printf("  %3d GPUs: %6.2f pflops (linear would be %6.2f)%s\n",
			p.GPUs, p.TotalPetaflops, p.LinearPetaflops, marker)
	}

	fmt.Println("\nCustom what-if: a 2.5T model on 8 nodes, everything on NVMe:")
	shape := perf.ModelShape{Hidden: 32768, Layers: 194, Heads: 16, Seq: 1024, CkptEvery: 1}
	cluster := perf.DGX2(8)
	if ok, b := perf.Feasible(perf.KindInfNVMe, cluster, shape, 2); ok {
		res := sim.SimulateIteration(sim.IterConfig{
			Cluster: cluster, Shape: shape, BszGPU: 2,
			Params: zero.OnNVMe, Optimizer: zero.OnNVMe,
			Overlap: true, OffloadActivations: true,
		})
		fmt.Printf("  fits (%.1f TB NVMe/node) and sustains %.1f TF/GPU (%.0f%% efficiency)\n",
			float64(b.NVMePeNode)/1e12, res.TFlopsPerGPU, 100*res.Efficiency)
		fmt.Printf("  iteration: fwd %.0fs + bwd %.0fs + optimizer %.0fs = %.0fs\n",
			res.ForwardSec, res.BackwardSec, res.OptimizerSec, res.TotalSec)
	} else {
		fmt.Println("  does not fit")
	}

	fmt.Println("\nAnd the same model under 3D parallelism:")
	if res := sim.Simulate3D(cluster, shape, 2, 8, 8); res.TFlopsPerGPU == 0 {
		fmt.Println("  out of memory — 128 GPUs of HBM cannot hold 50 TB of model states")
	}
}
