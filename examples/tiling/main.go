// Memory-centric tiling demo (paper Sec. 5.1.3, Figure 6b): a linear
// operator too large for any contiguous region of a pre-fragmented device
// OOMs when gathered whole, but trains when expressed as a mathematically
// equivalent sequence of tiles. The second half runs the same protocol
// through the public API on the real ZeRO-Infinity engine: a dense GPT
// OOMs under a pre-fragmented GPU budget, the ModelConfig.Tiling model
// trains.
package main

import (
	"errors"
	"fmt"
	"log"

	zeroinf "repro"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/module"
	"repro/internal/tensor"
)

func main() {
	const (
		in, out = 64, 512
		rows    = 4
		budget  = 1 << 20
		chunk   = 16 << 10 // contiguous chunks: 16 KiB
	)
	x := tensor.New(tensor.FP32, rows, in)
	tensor.NewRNG(3).FillNormal(x.Float32s(), 1)

	fmt.Printf("device: %s budget, pre-fragmented into %s chunks (Fig. 6b protocol)\n",
		mem.FormatBytes(budget), mem.FormatBytes(chunk))
	fmt.Printf("operator: %d→%d linear, fp16 weight = %s\n\n",
		in, out, mem.FormatBytes(int64(in*out*2)))

	var reference *tensor.Tensor
	for _, tiles := range []int{1, 4, 16} {
		alloc := mem.NewAllocator(budget)
		alloc.PreFragment(chunk)
		hooks := core.NewAllocHooks(alloc, 99)
		rt := module.NewRuntime(hooks)
		op := model.NewTiledLinear("op", in, out, tiles, true, 0.2)

		var y *tensor.Tensor
		err := core.RunUnderBudget(func() {
			y = rt.Forward(op, x)
			rt.Backward(op, y.Clone())
		})
		switch {
		case errors.Is(err, mem.ErrFragmented):
			fmt.Printf("tiles=%-3d max alloc %-8s → OOM: %v\n",
				tiles, mem.FormatBytes(op.MaxParamBytes()), err)
		case err != nil:
			fmt.Printf("tiles=%-3d failed: %v\n", tiles, err)
		default:
			match := ""
			if reference == nil {
				reference = y
			} else if tensor.MaxAbsDiff(reference, y) == 0 {
				match = " (output identical to previous tiling)"
			}
			fmt.Printf("tiles=%-3d max alloc %-8s → trains; peak live %s%s\n",
				tiles, mem.FormatBytes(op.MaxParamBytes()),
				mem.FormatBytes(hooks.PeakLive), match)
		}
	}

	fmt.Println("\nreal engine (ModelConfig.Tiling), same protocol on a whole GPT:")
	for _, tiles := range []int{1, 4} {
		res, err := zeroinf.Train(zeroinf.TrainOptions{
			Model: zeroinf.ModelConfig{Vocab: 16, Hidden: 32, Heads: 2, Seq: 6, Layers: 1, Tiling: tiles},
			Engine: zeroinf.EngineConfig{
				Infinity: true, Params: zeroinf.OnCPU, Optimizer: zeroinf.OnCPU,
				LossScale: 256, Seed: 42,
				GPUMemory: budget, PreFragment: 4 << 10,
			},
			Ranks: 2, Steps: 2, BatchPerRank: 2,
		})
		// The CI examples-smoke lane relies on this exit code: dense must
		// OOM and the tiled model must train.
		switch {
		case err != nil && core.ErrIsOOM(err):
			fmt.Printf("tiling=%d → OOM: %v\n", tiles, err)
			if tiles != 1 {
				log.Fatalf("tiled model OOMed under the Fig. 6b budget")
			}
		case err != nil:
			log.Fatalf("tiling=%d failed: %v", tiles, err)
		default:
			fmt.Printf("tiling=%d → trains (loss %.4f); max live param bytes %s\n",
				tiles, res.Losses[len(res.Losses)-1], mem.FormatBytes(res.Stats.MaxLiveParamBytes))
			if tiles == 1 {
				log.Fatalf("dense model trained under the Fig. 6b budget (fragmentation not enforced?)")
			}
		}
	}

	fmt.Println("\nanalytic Figure 6b (2 GB chunks, paper-scale hidden sizes):")
	for _, tiles := range []int64{1, 4, 16, 64} {
		fmt.Printf("  tiling %-3d → max hidden %d\n", tiles, maxHidden(tiles))
	}
}

func maxHidden(tiles int64) int64 {
	// Defer to the perf model used by the harness.
	return fig6b(tiles)
}
