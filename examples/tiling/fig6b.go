package main

import "repro/internal/perf"

func fig6b(tiles int64) int64 {
	return perf.Fig6bMaxHidden(tiles, 2*perf.GB)
}
