// Repository-level benchmarks: one per paper table/figure, delegating to the
// experiment harness (go test -bench=Fig -benchmem), plus end-to-end
// training-step benchmarks for every engine. Per-kernel microbenchmarks live
// next to their packages (tensor, nvme, optim, comm).
package zeroinf_test

import (
	"fmt"
	"io"
	"testing"

	zeroinf "repro"
	"repro/internal/harness"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Analytic and simulated artifacts.

func BenchmarkFig1MaxModelSize(b *testing.B)        { benchExperiment(b, "fig1") }
func BenchmarkFig2aMemoryRequirements(b *testing.B) { benchExperiment(b, "fig2a") }
func BenchmarkFig2bHardwareEnvelope(b *testing.B)   { benchExperiment(b, "fig2b") }
func BenchmarkFig3aParamGradBandwidth(b *testing.B) { benchExperiment(b, "fig3a") }
func BenchmarkFig3bOptimizerBandwidth(b *testing.B) { benchExperiment(b, "fig3b") }
func BenchmarkFig3cActCkptBandwidth(b *testing.B)   { benchExperiment(b, "fig3c") }
func BenchmarkFig5aThroughput512GPUs(b *testing.B)  { benchExperiment(b, "fig5a") }
func BenchmarkFig5bSuperlinearScaling(b *testing.B) { benchExperiment(b, "fig5b") }
func BenchmarkFig5cSingleNode(b *testing.B)         { benchExperiment(b, "fig5c") }
func BenchmarkFig6aMaxSizePerStrategy(b *testing.B) { benchExperiment(b, "fig6a") }
func BenchmarkFig6bTilingAnalytic(b *testing.B)     { benchExperiment(b, "fig6b-analytic") }
func BenchmarkFig6bTilingFunctional(b *testing.B)   { benchExperiment(b, "fig6b-functional") }
func BenchmarkFig6cGradientOffload(b *testing.B)    { benchExperiment(b, "fig6c") }
func BenchmarkFig6dOverlapAblation(b *testing.B)    { benchExperiment(b, "fig6d") }
func BenchmarkFig6eActCkptOffload(b *testing.B)     { benchExperiment(b, "fig6e") }
func BenchmarkTab1Configurations(b *testing.B)      { benchExperiment(b, "tab1") }
func BenchmarkTab2Strategies(b *testing.B)          { benchExperiment(b, "tab2") }
func BenchmarkTab3FutureBandwidth(b *testing.B)     { benchExperiment(b, "tab3") }

// Functional verification artifacts.

func BenchmarkEquivAllEngines(b *testing.B) { benchExperiment(b, "equiv") }
func BenchmarkFig6bEngine(b *testing.B)     { benchExperiment(b, "fig6b-engine") }
func BenchmarkNVMeBandwidth(b *testing.B)   { benchExperiment(b, "nvme-bw") }

// Memory-centric tiling on/off: same model function shape, dense vs tiled
// operators on the ZeRO-Infinity engine. Tiling trades a lower max live
// parameter working set for more (smaller) gathers per step.
func BenchmarkTilingStep(b *testing.B) {
	for _, tiles := range []int{1, 4} {
		b.Run(fmt.Sprintf("tiles=%d", tiles), func(b *testing.B) {
			mcfg := zeroinf.ModelConfig{Vocab: 16, Hidden: 32, Heads: 2, Seq: 8, Layers: 2, Tiling: tiles}
			b.ReportAllocs()
			b.ResetTimer()
			if _, err := zeroinf.Train(zeroinf.TrainOptions{
				Model: mcfg,
				Engine: zeroinf.EngineConfig{
					Infinity: true, Params: zeroinf.OnCPU, Optimizer: zeroinf.OnCPU,
					LossScale: 64, Seed: 1,
				},
				Ranks: 4, Steps: b.N, BatchPerRank: 2,
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// End-to-end training step per engine (4 ranks, tiny model): measures the
// real functional stack — goroutine collectives, fp16 round-trips, hooks,
// and for Infinity the async NVMe engine and prefetcher.

func benchTrainingSteps(b *testing.B, ecfg zeroinf.EngineConfig) {
	b.Helper()
	mcfg := zeroinf.ModelConfig{Vocab: 16, Hidden: 16, Heads: 2, Seq: 6, Layers: 2}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := zeroinf.Train(zeroinf.TrainOptions{
		Model: mcfg, Engine: ecfg, Ranks: 4, Steps: b.N, BatchPerRank: 2,
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkStepDDP(b *testing.B) {
	benchTrainingSteps(b, zeroinf.EngineConfig{Stage: zeroinf.StageDDP, LossScale: 64, Seed: 1})
}

func BenchmarkStepZeRO2(b *testing.B) {
	benchTrainingSteps(b, zeroinf.EngineConfig{Stage: zeroinf.Stage2, LossScale: 64, Seed: 1})
}

func BenchmarkStepZeRO3(b *testing.B) {
	benchTrainingSteps(b, zeroinf.EngineConfig{Stage: zeroinf.Stage3, LossScale: 64, Seed: 1})
}

func BenchmarkStepInfinityCPU(b *testing.B) {
	benchTrainingSteps(b, zeroinf.EngineConfig{
		Infinity: true, Params: zeroinf.OnCPU, Optimizer: zeroinf.OnCPU, LossScale: 64, Seed: 1})
}

func BenchmarkStepInfinityNVMe(b *testing.B) {
	benchTrainingSteps(b, zeroinf.EngineConfig{
		Infinity: true, Params: zeroinf.OnNVMe, Optimizer: zeroinf.OnNVMe,
		PrefetchDepth: 2, LossScale: 64, Seed: 1})
}
