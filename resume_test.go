package zeroinf

import (
	"errors"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/nvme"
)

func resumeModel() ModelConfig {
	return ModelConfig{Vocab: 16, Hidden: 16, Heads: 2, Seq: 6, Layers: 2}
}

// finalWeights loads the consolidated fp16 weights from the newest complete
// generation in dir.
func finalWeights(t *testing.T, dir string) map[string][]float32 {
	t.Helper()
	set, err := ckpt.LatestComplete(dir)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := set.OpenWeights()
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	params, err := ReadCheckpoint(rc)
	if err != nil {
		t.Fatal(err)
	}
	return params
}

func assertSameWeights(t *testing.T, got, want map[string][]float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("param count mismatch: %d vs %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("missing param %q", name)
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("param %q diverged at elem %d: %g vs %g", name, i, g[i], w[i])
			}
		}
	}
}

func assertSameLosses(t *testing.T, got, want []float64, offset int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("loss count mismatch: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("loss diverged at step %d: %v vs %v", offset+i, got[i], want[i])
		}
	}
}

// TestKillResumeReplay is the deterministic kill/resume proof across the
// engine matrix: train 2k steps uninterrupted (snapshotting once at the
// end), then train k steps + resume for the remaining k from the snapshot,
// and require the resumed half's losses and the final consolidated weights
// to be bit-identical.
func TestKillResumeReplay(t *testing.T) {
	const k, ranks, batch = 3, 2, 2
	base := EngineConfig{LossScale: 128, DynamicLossScale: true, Seed: 5}
	cases := []struct {
		name string
		mut  func(*EngineConfig, *testing.T)
	}{
		{"ddp", func(e *EngineConfig, _ *testing.T) { e.Stage = StageDDP }},
		{"zero2", func(e *EngineConfig, _ *testing.T) { e.Stage = Stage2 }},
		{"zero3-slice-overlap", func(e *EngineConfig, _ *testing.T) {
			e.Stage = Stage3
			e.Overlap = true
			e.PrefetchDepth = 2
		}},
		{"zero3-broadcast-overlap", func(e *EngineConfig, _ *testing.T) {
			e.Stage = Stage3
			e.Overlap = true
			e.PrefetchDepth = 2
			e.Partition = PartitionBroadcast
		}},
		{"infinity-cpu", func(e *EngineConfig, _ *testing.T) {
			e.Infinity = true
			e.Params, e.Optimizer = OnCPU, OnCPU
			e.Overlap = true
			e.PrefetchDepth = 2
		}},
		{"infinity-nvme", func(e *EngineConfig, t *testing.T) {
			e.Infinity = true
			e.Params, e.Optimizer = OnNVMe, OnNVMe
			e.Overlap = true
			e.PrefetchDepth = 2
			e.NVMeDir = t.TempDir()
		}},
		{"infinity-nvme-broadcast", func(e *EngineConfig, t *testing.T) {
			e.Infinity = true
			e.Params, e.Optimizer = OnNVMe, OnNVMe
			e.Overlap = true
			e.PrefetchDepth = 2
			e.Partition = PartitionBroadcast
			e.NVMeDir = t.TempDir()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Uninterrupted baseline over 2k steps; one snapshot at the end
			// captures the reference final weights.
			ecfg := base
			tc.mut(&ecfg, t)
			ecfg.CheckpointDir = t.TempDir()
			ecfg.CheckpointEvery = 2 * k
			baseRes, err := Train(TrainOptions{
				Model: resumeModel(), Engine: ecfg, Ranks: ranks,
				Steps: 2 * k, BatchPerRank: batch,
			})
			if err != nil {
				t.Fatal(err)
			}
			if baseRes.CheckpointErr != nil {
				t.Fatal(baseRes.CheckpointErr)
			}
			wantW := finalWeights(t, ecfg.CheckpointDir)

			// Interrupted run: k steps, snapshot, fresh process resumes.
			icfg := base
			tc.mut(&icfg, t)
			icfg.CheckpointDir = t.TempDir()
			icfg.CheckpointEvery = k
			resA, err := Train(TrainOptions{
				Model: resumeModel(), Engine: icfg, Ranks: ranks,
				Steps: k, BatchPerRank: batch,
			})
			if err != nil {
				t.Fatal(err)
			}
			if resA.CheckpointErr != nil {
				t.Fatal(resA.CheckpointErr)
			}
			assertSameLosses(t, resA.Losses, baseRes.Losses[:k], 0)

			resB, err := Train(TrainOptions{
				Model: resumeModel(), Engine: icfg, Ranks: ranks,
				Steps: 2 * k, BatchPerRank: batch, Resume: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if resB.CheckpointErr != nil {
				t.Fatal(resB.CheckpointErr)
			}
			if resB.StartStep != k || resB.FinalStep != 2*k {
				t.Fatalf("resume ran steps %d..%d, want %d..%d",
					resB.StartStep, resB.FinalStep, k, 2*k)
			}
			assertSameLosses(t, resB.Losses, baseRes.Losses[k:], k)
			assertSameWeights(t, finalWeights(t, icfg.CheckpointDir), wantW)
		})
	}
}

// TestKillResumeMidSnapshot kills the async writer partway through the
// second generation's files — the crash window the manifest protocol
// exists for. The partial generation must be skipped and the run resumed
// from the first, replaying to a bit-identical end state.
func TestKillResumeMidSnapshot(t *testing.T) {
	const k, ranks, batch = 3, 2, 2
	base := EngineConfig{Stage: Stage3, Overlap: true, PrefetchDepth: 2,
		LossScale: 128, DynamicLossScale: true, Seed: 5}

	ecfg := base
	ecfg.CheckpointDir = t.TempDir()
	ecfg.CheckpointEvery = 2 * k
	baseRes, err := Train(TrainOptions{
		Model: resumeModel(), Engine: ecfg, Ranks: ranks, Steps: 2 * k, BatchPerRank: batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantW := finalWeights(t, ecfg.CheckpointDir)

	// Interrupted: snapshots at k and 2k; the writer dies after the 4th
	// data file — mid-generation-2k, post-generation-k (3 files each).
	icfg := base
	icfg.CheckpointDir = t.TempDir()
	icfg.CheckpointEvery = k
	resA, err := Train(TrainOptions{
		Model: resumeModel(), Engine: icfg, Ranks: ranks, Steps: 2 * k, BatchPerRank: batch,
		ckptWriter: &ckpt.WriterOptions{KillAfter: ranks + 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resA.CheckpointErr, ckpt.ErrKilled) {
		t.Fatalf("want ErrKilled from the interrupted run, got %v", resA.CheckpointErr)
	}
	set, err := ckpt.LatestComplete(icfg.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	if set.Manifest.Step != k {
		t.Fatalf("surviving generation is step %d, want %d", set.Manifest.Step, k)
	}

	resB, err := Train(TrainOptions{
		Model: resumeModel(), Engine: icfg, Ranks: ranks, Steps: 2 * k, BatchPerRank: batch,
		Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resB.CheckpointErr != nil {
		t.Fatal(resB.CheckpointErr)
	}
	if resB.StartStep != k {
		t.Fatalf("resumed from step %d, want %d", resB.StartStep, k)
	}
	assertSameLosses(t, resB.Losses, baseRes.Losses[k:], k)
	assertSameWeights(t, finalWeights(t, icfg.CheckpointDir), wantW)
}

// TestResumeAfterInjectedTornWrite arms a persistent torn-write fault that
// starts partway through the second snapshot: its generation never commits
// (each torn temp file fails and is discarded), and resume falls back to
// the first generation.
func TestResumeAfterInjectedTornWrite(t *testing.T) {
	const k, ranks, batch = 3, 2, 2
	base := EngineConfig{Stage: StageDDP, LossScale: 128, DynamicLossScale: true, Seed: 5}

	ecfg := base
	ecfg.CheckpointDir = t.TempDir()
	ecfg.CheckpointEvery = 2 * k
	baseRes, err := Train(TrainOptions{
		Model: resumeModel(), Engine: ecfg, Ranks: ranks, Steps: 2 * k, BatchPerRank: batch,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantW := finalWeights(t, ecfg.CheckpointDir)

	// Generation k writes ranks+2 files (ranks + weights + MANIFEST), each
	// one write sub-request at this size; everything after that tears.
	inj := &nvme.FaultInjector{}
	inj.Arm(nvme.FaultArm{Op: nvme.Write, Nth: int64(ranks) + 3, Count: 1 << 30, Mode: nvme.FaultTorn})
	icfg := base
	icfg.CheckpointDir = t.TempDir()
	icfg.CheckpointEvery = k
	resA, err := Train(TrainOptions{
		Model: resumeModel(), Engine: icfg, Ranks: ranks, Steps: 2 * k, BatchPerRank: batch,
		ckptWriter: &ckpt.WriterOptions{Faults: inj, Retries: 1, RetryBackoff: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resA.CheckpointErr, nvme.ErrInjected) {
		t.Fatalf("want ErrInjected from the faulted run, got %v", resA.CheckpointErr)
	}
	set, err := ckpt.LatestComplete(icfg.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	if set.Manifest.Step != k {
		t.Fatalf("surviving generation is step %d, want %d", set.Manifest.Step, k)
	}

	resB, err := Train(TrainOptions{
		Model: resumeModel(), Engine: icfg, Ranks: ranks, Steps: 2 * k, BatchPerRank: batch,
		Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resB.CheckpointErr != nil {
		t.Fatal(resB.CheckpointErr)
	}
	assertSameLosses(t, resB.Losses, baseRes.Losses[k:], k)
	assertSameWeights(t, finalWeights(t, icfg.CheckpointDir), wantW)
}

// TestResumeWorldSizeMismatch: a checkpoint taken at one world size must be
// rejected, not silently misloaded, at another.
func TestResumeWorldSizeMismatch(t *testing.T) {
	ecfg := EngineConfig{Stage: StageDDP, LossScale: 128, Seed: 5}
	ecfg.CheckpointDir = t.TempDir()
	ecfg.CheckpointEvery = 2
	if _, err := Train(TrainOptions{
		Model: resumeModel(), Engine: ecfg, Ranks: 2, Steps: 2, BatchPerRank: 2,
	}); err != nil {
		t.Fatal(err)
	}
	_, err := Train(TrainOptions{
		Model: resumeModel(), Engine: ecfg, Ranks: 4, Steps: 4, BatchPerRank: 2, Resume: true,
	})
	if err == nil {
		t.Fatal("resume with mismatched world size was accepted")
	}
}

// TestResumeColdStartsOnEmptyDir: Resume against an empty directory is a
// cold start, not an error.
func TestResumeColdStartsOnEmptyDir(t *testing.T) {
	ecfg := EngineConfig{Stage: StageDDP, LossScale: 128, Seed: 5}
	ecfg.CheckpointDir = t.TempDir()
	ecfg.CheckpointEvery = 2
	res, err := Train(TrainOptions{
		Model: resumeModel(), Engine: ecfg, Ranks: 2, Steps: 2, BatchPerRank: 2, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StartStep != 0 || len(res.Losses) != 2 {
		t.Fatalf("cold start ran steps %d..%d with %d losses", res.StartStep, res.FinalStep, len(res.Losses))
	}
}

// TestStopTakesFinalSnapshot: a close()d Stop channel halts training at a
// consensus step boundary with a resumable final snapshot.
func TestStopTakesFinalSnapshot(t *testing.T) {
	ecfg := EngineConfig{Stage: StageDDP, LossScale: 128, DynamicLossScale: true, Seed: 5}
	ecfg.CheckpointDir = t.TempDir()
	ecfg.CheckpointEvery = 100 // periodic snapshots never fire
	stop := make(chan struct{})
	res, err := Train(TrainOptions{
		Model: resumeModel(), Engine: ecfg, Ranks: 2, Steps: 50, BatchPerRank: 2,
		Stop: stop,
		// Close from rank 0's step-2 callback: the consensus check at the
		// step-3 boundary sees it, so the stop point is deterministic.
		OnStep: func(s int, _ StepResult) {
			if s == 2 {
				close(stop)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointErr != nil {
		t.Fatal(res.CheckpointErr)
	}
	if res.FinalStep != 3 {
		t.Fatalf("expected a stop at step 3, got final step %d", res.FinalStep)
	}
	set, err := ckpt.LatestComplete(ecfg.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	if set.Manifest.Step != res.FinalStep {
		t.Fatalf("final snapshot is step %d, want %d", set.Manifest.Step, res.FinalStep)
	}
	res2, err := Train(TrainOptions{
		Model: resumeModel(), Engine: ecfg, Ranks: 2, Steps: res.FinalStep + 2, BatchPerRank: 2,
		Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.StartStep != res.FinalStep || len(res2.Losses) != 2 {
		t.Fatalf("resume after stop ran steps %d..%d", res2.StartStep, res2.FinalStep)
	}
}
