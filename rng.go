package zeroinf

import "repro/internal/tensor"

// rngAlias keeps the tensor RNG out of the public surface while letting the
// facade seed synthetic data deterministically.
type rngAlias = tensor.RNG

func rngNew(seed uint64) *rngAlias { return tensor.NewRNG(seed) }
